package recmat

import (
	"math/rand"
	"testing"
)

func spdMatrix(n int, rng *rand.Rand) *Matrix {
	g := Random(n, n, rng)
	a := NewMatrix(n, n)
	RefGEMM(true, false, 1, g, g, 0, a)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestEngineCholeskySolve(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(1))
	n := 120
	A := spdMatrix(n, rng)
	B := Random(n, 2, rng)
	X := B.Clone()
	if err := eng.SolveSPD(A, X, &Options{Layout: ZMorton, Algorithm: Strassen}); err != nil {
		t.Fatal(err)
	}
	res := B.Clone()
	RefGEMM(false, false, -1, A, X, 1, res)
	if res.MaxAbs() > 1e-8 {
		t.Fatalf("SolveSPD residual %g", res.MaxAbs())
	}
}

func TestEngineSYRK(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(2))
	A := Random(90, 30, rng)
	C := NewMatrix(90, 90)
	if err := eng.SYRK(false, 2, A, 0, C, &Options{Layout: Hilbert}); err != nil {
		t.Fatal(err)
	}
	want := NewMatrix(90, 90)
	RefGEMM(false, true, 2, A, A, 0, want)
	if !Equal(C, want, 1e-11) {
		t.Fatalf("SYRK wrong: %g", MaxAbsDiff(C, want))
	}
}

func TestEngineTRMMAndTRSMRoundTrip(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(3))
	n := 100
	L := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			L.Set(i, j, rng.Float64()-0.5)
		}
		L.Set(j, j, 2)
	}
	B := Random(n, 5, rng)
	X := B.Clone()
	opts := &Options{Layout: GrayMorton}
	if err := eng.TRMM(false, false, 3, L, X, opts); err != nil {
		t.Fatal(err)
	}
	if err := eng.TRSM(false, false, 1.0/3.0, L, X, opts); err != nil {
		t.Fatal(err)
	}
	if !Equal(X, B, 1e-10) {
		t.Fatalf("TRSM∘TRMM != id: %g", MaxAbsDiff(X, B))
	}
}

func TestEngineLUSolveAndDet(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(4))
	n := 130
	A := Random(n, n, rng)
	for i := 0; i < n; i++ {
		A.Set(i, i, A.At(i, i)+4)
	}
	B := Random(n, 3, rng)
	f, err := eng.LU(A, &Options{Layout: ZMorton, Algorithm: Strassen})
	if err != nil {
		t.Fatal(err)
	}
	X := B.Clone()
	if err := f.Solve(X); err != nil {
		t.Fatal(err)
	}
	res := B.Clone()
	RefGEMM(false, false, -1, A, X, 1, res)
	if res.MaxAbs() > 1e-9 {
		t.Fatalf("LU solve residual %g", res.MaxAbs())
	}
	if f.Det() == 0 {
		t.Fatal("determinant of a solvable system is zero")
	}
	// One-shot path.
	Y := B.Clone()
	if err := eng.SolveLU(A, Y, &Options{Layout: Hilbert}); err != nil {
		t.Fatal(err)
	}
	if !Equal(X, Y, 1e-10) {
		t.Fatal("SolveLU disagrees with factor-then-solve")
	}
}
