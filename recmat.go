// Package recmat is a parallel dense matrix multiplication library built
// on recursive array layouts, reproducing Chatterjee, Lebeck, Patnala,
// and Thottethodi, "Recursive Array Layouts and Fast Parallel Matrix
// Multiplication" (SPAA 1999).
//
// The library multiplies double-precision matrices with the standard,
// Strassen, or Winograd recursive algorithms over six array layouts: the
// canonical column-major layout of the BLAS, and five recursive layouts
// derived from space-filling curves (U-Morton, X-Morton, Z-Morton,
// Gray-Morton, Hilbert). The public entry points follow the Level 3 BLAS
// dgemm convention: operands are column-major with explicit leading
// dimensions, and the operation is C ← α·op(A)·op(B) + β·C. Conversion
// between the caller's column-major data and the internal recursive
// layout happens inside the call and is reported separately in the
// returned Report, so the cost of adopting a recursive layout is never
// hidden.
//
// # Quick start
//
//	eng := recmat.NewEngine(0) // one worker per CPU
//	defer eng.Close()
//	A := recmat.Random(1000, 1000, rand.New(rand.NewSource(1)))
//	B := recmat.Random(1000, 1000, rand.New(rand.NewSource(2)))
//	C := recmat.NewMatrix(1000, 1000)
//	report, err := eng.Mul(C, A, B, &recmat.Options{
//		Layout:    recmat.ZMorton,
//		Algorithm: recmat.Strassen,
//	})
//
// See the examples directory for complete programs and EXPERIMENTS.md
// for the reproduction of every figure in the paper.
package recmat

import (
	"context"
	"math/rand"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/leaf"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/tile"
)

// Matrix is a dense, column-major matrix of float64 values with an
// explicit leading dimension (Stride), matching the BLAS storage
// convention. Element (i, j) lives at Data[j*Stride+i].
type Matrix = matrix.Dense

// NewMatrix returns a zeroed m×n matrix with contiguous storage.
func NewMatrix(m, n int) *Matrix { return matrix.New(m, n) }

// FromSlice wraps existing column-major data (leading dimension ld)
// without copying.
func FromSlice(data []float64, m, n, ld int) *Matrix { return matrix.FromSlice(data, m, n, ld) }

// Random returns an m×n matrix with entries uniform in [-1, 1).
func Random(m, n int, rng *rand.Rand) *Matrix { return matrix.Random(m, n, rng) }

// RandomSeeded returns an m×n matrix deterministically generated from
// seed by a splitmix64 stream — constant-time seeding, so it is the
// cheap way to materialize operands named by a seed (the serving
// layer's request contract).
func RandomSeeded(m, n int, seed int64) *Matrix { return matrix.RandomSeeded(m, n, seed) }

// SeedFill fills dst with RandomSeeded's value stream for seed — for
// callers materializing seeded operands into recycled buffers.
func SeedFill(dst []float64, seed int64) { matrix.SeedFill(dst, seed) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix { return matrix.Identity(n) }

// Equal reports element-wise equality within an absolute tolerance.
func Equal(a, b *Matrix, tol float64) bool { return matrix.Equal(a, b, tol) }

// MaxAbsDiff returns the largest absolute element-wise difference.
func MaxAbsDiff(a, b *Matrix) float64 { return matrix.MaxAbsDiff(a, b) }

// RefGEMM is the naive reference implementation of the dgemm operation,
// exported as a correctness oracle for users of the library.
func RefGEMM(transA, transB bool, alpha float64, A, B *Matrix, beta float64, C *Matrix) {
	matrix.RefGEMM(transA, transB, alpha, A, B, beta, C)
}

// Layout selects an array layout function (Section 3 of the paper).
type Layout = layout.Curve

// The supported layouts. ColMajor is the canonical baseline; the five
// recursive layouts are ordered by increasing addressing complexity.
const (
	ColMajor   = layout.ColMajor
	RowMajor   = layout.RowMajor // visualization only; Mul rejects it
	UMorton    = layout.UMorton
	XMorton    = layout.XMorton
	ZMorton    = layout.ZMorton
	GrayMorton = layout.GrayMorton
	Hilbert    = layout.Hilbert
)

// Layouts lists the layouts accepted by Mul and DGEMM, canonical first.
var Layouts = []Layout{ColMajor, UMorton, XMorton, ZMorton, GrayMorton, Hilbert}

// ParseLayout resolves a layout name ("ColMajor", "Z-Morton", "z", …).
func ParseLayout(s string) (Layout, error) { return layout.ParseCurve(s) }

// Algorithm selects a multiplication algorithm (Section 2 of the paper).
type Algorithm = core.Alg

// The supported algorithms. Standard is the O(n³) recursion in
// accumulate form; Standard8 is the eight-spawn variant of Figure 1(a);
// Strassen and Winograd are the O(n^lg7) fast algorithms.
const (
	Standard  = core.Standard
	Standard8 = core.Standard8
	Strassen  = core.Strassen
	Winograd  = core.Winograd
	// StrassenLowMem is the space-conserving sequential Strassen variant
	// of Section 5 (pre/post-additions interspersed with the recursive
	// calls); it exposes no parallelism and exists for the ablation that
	// reproduces the paper's observation that it behaves like the
	// standard algorithm with respect to layouts.
	StrassenLowMem = core.StrassenLowMem
	// Auto resolves the algorithm per problem shape: Standard for small
	// problems, otherwise the cheapest of Winograd and the rectangular
	// table algorithms under a shared padded-flop cost model. The
	// resolved choice is recorded in Report.Alg.
	Auto = core.AlgAuto
)

// The table-driven bilinear ⟨m,k,n⟩ algorithms: each is a sparse
// coefficient table (Benson–Ballard style) run by one generic recursive
// engine. The ⟨2,2,2⟩ entries are the classic algorithms in table form;
// the rectangular tables divide the three dimensions at different rates
// and win on correspondingly rectangular problems.
var (
	TableWinograd222 = core.TableWinograd222 // ⟨2,2,2⟩ rank 7, Winograd's addition count
	TableStrassen222 = core.TableStrassen222 // ⟨2,2,2⟩ rank 7, Strassen's original
	TableFast323     = core.TableFast323     // ⟨3,2,3⟩ rank 17
	TableFast424     = core.TableFast424     // ⟨4,2,4⟩ rank 28
	TableLaderman333 = core.TableLaderman333 // ⟨3,3,3⟩ rank 23, Laderman
)

// Algorithms lists all supported algorithms, enumerated from the core
// registry so the table-driven algorithms appear automatically. Auto is
// excluded: it is a selection policy, not an algorithm.
var Algorithms = append([]Algorithm(nil), core.Algs...)

// AlgorithmNames returns the parseable name of every supported
// algorithm, plus "auto", in registry order — the canonical source for
// command-line help and error listings.
func AlgorithmNames() []string { return core.AlgNames() }

// ParseAlgorithm resolves an algorithm name (see AlgorithmNames).
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlg(s) }

// ResolveAlgorithm reports the algorithm a multiplication of the given
// m×k×n shape with these options will run: Options.Algorithm itself
// when explicit, or the per-shape Auto choice. Callers that cache or
// route work by algorithm (the serving daemon's plan cache) use this to
// key on the resolved choice rather than the "auto" sentinel.
func ResolveAlgorithm(opts *Options, m, k, n int) Algorithm {
	var o core.Options
	if opts != nil {
		o = opts.coreOptions()
	}
	return core.ResolveAlg(o, m, k, n)
}

// TileConfig controls tile-size selection (Section 4): tiles are chosen
// from [TMin, TMax] so that the padded matrix is a 2^d grid of tiles.
type TileConfig = tile.Config

// Kernel is a leaf multiplication kernel; see Kernels for the built-ins.
type Kernel = leaf.Kernel

// Kernels returns the names of the built-in leaf kernels in sorted
// order: "axpy", "blocked" (register-blocked 4×4), "naive", "packed4x4"
// and "packed8x4" (packed-panel register-blocked kernels with a
// pack-free fast path on contiguous recursive-layout tiles), and
// "unrolled4" (the paper's kernel), plus whatever hardware kernels the
// host CPU unlocked — "avx2" (AVX2/FMA 8×4) on amd64, "neon" (NEON 4×4)
// on arm64; see SIMDKernels. See DESIGN.md for the hierarchy.
func Kernels() []string { return leaf.Names() }

// KernelByName resolves a built-in kernel.
func KernelByName(name string) (Kernel, error) { return leaf.Get(name) }

// SIMDKernels returns the names of the assembly leaf kernels registered
// on this host — the subset of Kernels that dispatches to hardware
// micro-kernels (AVX2/FMA on amd64, NEON on arm64). Empty when the CPU
// lacks the features, under `-tags noasm`, on other GOARCHes, or when
// the RECMAT_NOSIMD environment variable disabled them at startup.
func SIMDKernels() []string { return leaf.SIMDNames() }

// CPUFeatures reports the SIMD capabilities detected on the host CPU in
// sorted order (e.g. "avx2", "fma" on a modern amd64; "asimd" on
// arm64). It describes the hardware and is unaffected by RECMAT_NOSIMD;
// use SIMDKernels to see what is actually runnable.
func CPUFeatures() []string { return leaf.Features() }

// CalibrateKernel benchmarks the built-in kernels on an m×n×k leaf
// multiplication over contiguous operands and returns the name of the
// fastest — the same measurement the autotuned default performs on first
// use for a tile shape. Results are memoized per shape.
func CalibrateKernel(m, n, k int) string { return leaf.Calibrate(m, n, k) }

// Options configures a multiplication. The zero value multiplies with
// the standard algorithm on the column-major layout using default tiles.
type Options struct {
	// Layout is the array layout; Mul converts operands to it
	// internally and converts the result back.
	Layout Layout
	// Algorithm is the recursion to run.
	Algorithm Algorithm
	// Workers overrides the engine's worker count for pool-less calls
	// (Mul/DGEMM package functions); 0 means one per CPU. Engine
	// methods ignore it.
	Workers int
	// Tile overrides tile-size selection; zero value uses the default
	// [16, 64] range preferring 32.
	Tile TileConfig
	// ForceTile forces an exact square tile size, bypassing selection
	// (ForceTile=1 reproduces element-level quadtree layouts).
	ForceTile int
	// KernelName selects a built-in leaf kernel by name (see Kernels);
	// it takes precedence over Kernel. When both are unset the engine
	// autotunes: it benchmarks the built-in kernels on the chosen tile
	// shape at first use and runs the winner. Note this departs from the
	// paper, whose experiments fix the four-way-unrolled kernel; set
	// KernelName to "unrolled4" to reproduce the paper's setup exactly
	// (cmd/experiments does).
	KernelName string
	// Kernel overrides the leaf kernel with an arbitrary function.
	Kernel Kernel
	// SerialCutoff is the quadrant size in tiles at or below which the
	// recursion stops spawning parallel tasks (0 = default 4).
	SerialCutoff int
	// FastCutoff is the quadrant size in tiles at or below which the
	// fast algorithms switch to the standard recursion (0 = 1, i.e.
	// recurse the fast algorithm all the way down, as the paper does).
	FastCutoff int
	// DisableSplit turns off wide/lean submatrix decomposition.
	DisableSplit bool
	// PartnerDim, when positive, tells Engine.Prepack the expected free
	// dimension of the partners the plan will multiply against (for a
	// serving workload, the width b of the streamed right-hand sides).
	// The plan then splits into the same squat blocks a direct GEMM of
	// that shape would use, so conforming partners pad their skinny
	// dimension minimally. Ignored outside Prepack.
	PartnerDim int
	// MemBudget, when positive, is an upper bound in bytes on the
	// workspace a multiplication may allocate (packed operands plus
	// algorithm temporaries plus kernel scratch). Before allocating
	// anything the engine estimates the footprint of the requested
	// configuration and, if it exceeds the budget, degrades along a
	// fixed ladder — fast parallel algorithm → low-memory serial
	// Strassen → standard parallel → standard serial — taking the first
	// rung that fits. Each degradation step is recorded in
	// Report.Degraded; if no rung fits the call fails with ErrMemBudget
	// before touching C. Zero means unlimited.
	MemBudget int64
	// MaxResidualGrowth, when positive, bounds the numerical error the
	// fast algorithms (Strassen, Winograd) are allowed to introduce,
	// measured as residual growth relative to the standard algorithm's
	// eps·k·|A|·|B| bound on a small probe block sampled from the
	// operands. If the probe exceeds the bound the engine degrades to
	// the standard algorithm and records the decision in
	// Report.Degraded. The standard algorithm measures ≈1 on this
	// scale; useful bounds are typically 8–100. Zero disables the
	// check.
	MaxResidualGrowth float64
	// TraceID, when non-zero, attributes this call to a served request
	// in the active trace: the call's lane carries the id, and the
	// Chrome-trace exporter links it back to the matching request lane.
	// Serving layers set it per request; library callers leave it zero.
	TraceID int64
}

func (o *Options) coreOptions() core.Options {
	if o == nil {
		return core.Options{}
	}
	return core.Options{
		Curve:             o.Layout,
		Alg:               o.Algorithm,
		Kernel:            o.Kernel,
		KernelName:        o.KernelName,
		Tile:              o.Tile,
		ForceTile:         o.ForceTile,
		SerialCutoff:      o.SerialCutoff,
		FastCutoff:        o.FastCutoff,
		DisableSplit:      o.DisableSplit,
		PartnerDim:        o.PartnerDim,
		MemBudget:         o.MemBudget,
		MaxResidualGrowth: o.MaxResidualGrowth,
		TraceID:           o.TraceID,
	}
}

// Report describes what a multiplication did: separate conversion and
// compute wall times (the honest accounting of Section 4), accounted
// work/span of the task DAG (Work/Span estimates available parallelism,
// as Cilk's critical-path tracking did), the tiling chosen, and — when
// admission control intervened — the algorithm actually run and the
// degradation decisions that led to it.
type Report = core.Stats

// Error taxonomy. Every failure a multiplication can produce is one of
// these (or a context error), reachable through errors.Is/errors.As:
//
//   - ErrPoolClosed: the engine was closed before or during the call.
//   - ErrNonFinite: alpha or beta is NaN or ±Inf.
//   - ErrDimension: operand shapes do not conform, or the padded
//     problem would overflow addressing limits.
//   - ErrMemBudget: no degradation rung fits Options.MemBudget.
//   - *TaskError: one or more worker tasks panicked; it aggregates
//     every sibling panic as a *PanicError with the stack captured at
//     the panicking worker.
//   - context.Canceled / context.DeadlineExceeded: wrapped in the
//     returned error when the context ends the run.
var (
	ErrPoolClosed = sched.ErrPoolClosed
	ErrNonFinite  = core.ErrNonFinite
	ErrDimension  = core.ErrDimension
	ErrMemBudget  = core.ErrMemBudget
)

// TaskError aggregates the panics of a failed run; Unwrap returns the
// individual *PanicError values (errors.Join style).
type TaskError = sched.TaskError

// PanicError is one recovered worker panic with the stack captured at
// the panic site; Unwrap exposes the panic value when it is an error.
type PanicError = sched.PanicError

// Mul computes C = A·B with the given options (nil options = defaults).
// It is shorthand for DGEMM(false, false, 1, A, B, 0, C, opts).
func Mul(C, A, B *Matrix, opts *Options) (*Report, error) {
	return DGEMM(false, false, 1, A, B, 0, C, opts)
}

// DGEMM computes C ← α·op(A)·op(B) + β·C following the Level 3 BLAS
// convention of the paper's Section 2.1, using a transient worker pool.
// For repeated calls, create an Engine and use its methods to amortize
// pool start-up.
func DGEMM(transA, transB bool, alpha float64, A, B *Matrix, beta float64, C *Matrix, opts *Options) (*Report, error) {
	return GEMMContext(context.Background(), transA, transB, alpha, A, B, beta, C, opts)
}

// GEMMContext is DGEMM with cooperative cancellation: when ctx is
// cancelled the run aborts within roughly one leaf-kernel latency and
// the call returns an error wrapping ctx's cause. On cancellation C
// holds the β-scaled input plus any fully completed output blocks —
// never a partially written block product — and the returned error says
// how far the computation got.
func GEMMContext(ctx context.Context, transA, transB bool, alpha float64, A, B *Matrix, beta float64, C *Matrix, opts *Options) (*Report, error) {
	e := NewEngine(optWorkers(opts))
	defer e.Close()
	return e.DGEMMContext(ctx, transA, transB, alpha, A, B, beta, C, opts)
}

func optWorkers(opts *Options) int {
	if opts == nil {
		return 0
	}
	return opts.Workers
}
