package recmat

import (
	"context"

	"repro/internal/core"
)

// This file is the public face of the batched GEMM path: many small or
// skinny multiplications scheduled as one task wave over the engine's
// workers instead of N independent calls. A per-call driver pays root
// task injection, admission control, and arena reservation per
// multiplication; at serving shapes (far below the serial cutoff) that
// per-call overhead, not flops, bounds throughput. The wave pays those
// costs once for the whole batch.

// GEMMBatchItem is one member of an Engine.GEMMBatch wave. Items may
// differ in shape, scalars, and transposition; the C matrices of
// distinct items must not alias (they are written concurrently). A
// non-nil Ctx cancels that member alone — an expired member is dropped
// from the wave, not the wave from the member.
type GEMMBatchItem = core.BatchItem

// PrepackedGEMMBatchItem is one member of an Engine.GEMMPrepackedBatch
// wave: a raw right-hand side multiplied against the wave's shared
// prepacked left-hand Plan.
type PrepackedGEMMBatchItem = core.PrepackedBatchItem

// BatchReport extends Report with wave-level accounting: Items counts
// the members scheduled into the wave, Completed the members that ran
// to completion; the embedded Report fields aggregate over the wave.
type BatchReport = core.BatchStats

// GEMMBatch computes C_i ← α_i·op(A_i)·op(B_i) + β_i·C_i for every item
// in one task wave: one admission/MemBudget charge covering the wave's
// concurrently-live footprint, one scratch-arena reservation sized by
// the largest member, per-item packing fused into the wave tasks, and
// min(items, workers) runner tasks pulling items off a shared counter.
// A steady-state wave of repeated shapes performs zero allocations per
// item.
//
// The returned slice has one error slot per item (nil = success) with
// per-item atomicity matching DGEMMContext: a failed or cancelled
// member's C holds exactly its β-scaled input, and one member's panic
// or expiry never poisons its wave siblings. The call-level error is
// non-nil only when the wave itself could not be scheduled — then no
// item ran and every C is untouched. opts must select a recursive
// layout (the default does); the canonical layouts have the per-call
// conversion cost the batch path exists to avoid.
func (e *Engine) GEMMBatch(ctx context.Context, items []GEMMBatchItem, opts *Options) (*BatchReport, []error, error) {
	co := opts.coreOptions()
	co.Metrics = e.metrics
	return core.GEMMBatch(ctx, e.pool, co, items)
}

// GEMMPrepackedBatch computes C_i ← α_i·(plan A)·op(B_i) + β_i·C_i in
// one wave against a shared prepacked left-hand Plan: the plan's
// conversion was paid once at Prepack time, and each member's B is
// packed into the plan-conforming geometry inside its wave task — no
// per-item PrepackConforming call or plan allocation. This is the
// serving pattern's batched form: one resident model operand, a wave
// of streaming right-hand sides.
//
// Each member's op(B) must have pa.Cols() rows; the free dimension may
// vary per member. Error semantics match GEMMBatch.
func (e *Engine) GEMMPrepackedBatch(ctx context.Context, pa *Plan, items []PrepackedGEMMBatchItem, opts *Options) (*BatchReport, []error, error) {
	co := opts.coreOptions()
	co.Metrics = e.metrics
	var p *core.Prepacked
	if pa != nil {
		p = pa.p
	}
	return core.GEMMPrepackedBatch(ctx, e.pool, co, p, items)
}

// GEMMBatchStrided is the equal-shape batched form: count items laid
// out at fixed strides in three flat buffers — the dominant
// strided-batch calling convention of inference workloads. Item i
// multiplies the m×k (k×m when transA) column-major matrix at
// a[i·strideA] with leading dimension lda, likewise for B and C; alpha
// and beta are shared. Views are taken without copying and the batch
// runs through GEMMBatch.
func (e *Engine) GEMMBatchStrided(ctx context.Context, opts *Options, transA, transB bool,
	m, k, n int, alpha float64, a []float64, lda, strideA int, b []float64, ldb, strideB int,
	beta float64, c []float64, ldc, strideC int, count int) (*BatchReport, []error, error) {

	co := opts.coreOptions()
	co.Metrics = e.metrics
	return core.GEMMBatchStrided(ctx, e.pool, co, transA, transB, m, k, n,
		alpha, a, lda, strideA, b, ldb, strideB, beta, c, ldc, strideC, count)
}
