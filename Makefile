GO ?= go

.PHONY: check build vet test race stress soak bench bench-kernel fuzz bench-json obs-gate trace-smoke omcheck asm-check algtable-check

check: build vet race stress soak obs-gate trace-smoke omcheck asm-check algtable-check

# The algorithm-table gate: every registered bilinear <m,k,n>
# coefficient table must satisfy the Brent equations in exact integer
# arithmetic — the proof that the table computes matrix product, run
# against all mk*kn*mn equations per table (see internal/core/table.go).
algtable-check:
	$(GO) test -run 'TestAlgTables' -count=1 -v ./internal/core

# The assembly hygiene gate. vet's asmdecl checker cross-validates every
# .s frame layout against its Go declaration; the noasm build and test
# prove the pure-Go fallback stands alone (it is what non-amd64/arm64
# hosts and `-tags noasm` users run); the cross-compiles assemble both
# architectures' kernels so an edit to one .s file cannot silently break
# the other GOARCH.
asm-check:
	$(GO) vet ./internal/leaf
	$(GO) build -tags noasm ./...
	$(GO) test -tags noasm ./internal/leaf
	GOARCH=amd64 $(GO) build ./...
	GOARCH=arm64 $(GO) build ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection stress: the TestStress* suites run under the race
# detector with probabilistic panic/alloc/delay faults enabled at every
# instrumented site (see internal/faultinject). RECMAT_FAULTS overrides
# the default rates.
RECMAT_FAULTS ?= panic=0.002,alloc=0.005,delay=0.005/50us,seed=7
stress:
	RECMAT_FAULTS='$(RECMAT_FAULTS)' $(GO) test -race -count=3 -run 'Stress' . ./internal/core ./internal/sched

# The serving-daemon chaos soak: the closed-loop multi-tenant load
# generator drives an in-process recmatd at 4x its admission limit for
# RECMAT_SOAK (default 60s) under the race detector, with faultinject
# firing panics, delays, and allocation failures inside the engine the
# whole time. The test asserts the daemon's robustness contract: it
# sheds instead of wedging, every failure is a typed error kind,
# identical request specs agree on their result norm, and drain leaves
# no goroutine and no in-flight request behind. The soak runs twice:
# once on the broad mixed workload and once on the batch workload
# (RECMAT_SOAK_WORKLOAD=batch), whose same-key named requests keep the
# request coalescer's batched waves under chaos for the whole run.
RECMAT_SOAK ?= 60s
soak:
	RECMAT_SOAK='$(RECMAT_SOAK)' $(GO) test -race -count=1 -run 'TestChaosSoak|TestSoakResultConsistency' -v -timeout 10m ./internal/serve
	RECMAT_SOAK='$(RECMAT_SOAK)' RECMAT_SOAK_WORKLOAD=batch $(GO) test -race -count=1 -run 'TestChaosSoak' -v -timeout 10m ./internal/serve

# The observability gates. obs-gate bounds the disabled-tracer cost —
# tracepoints-per-multiply × per-tracepoint nil-check cost, both
# measured in one process — at 2% of an n=512 multiply's wall time,
# bounds the serving layer's always-on request-ledger cost at 2% of the
# smallest plausible request, and validates a traced 512³ Strassen
# export. trace-smoke exercises the CLI path end to end: cmd/matmul
# writes a Chrome trace and cmd/tracecheck re-validates the file the
# way Perfetto would load it. omcheck is the OpenMetrics conformance
# gate: the /metricz text exposition (and the renderer underneath it)
# must pass the strict lint — counter/gauge/histogram suffix contracts,
# cumulative le buckets, +Inf == _count, terminal # EOF.
obs-gate:
	RECMAT_OBS_GATE=1 $(GO) test -run 'TestObsGate' -count=1 -v .

trace-smoke:
	$(GO) run ./cmd/matmul -m 512 -alg strassen -layout z -trace /tmp/recmat_trace.json > /dev/null
	$(GO) run ./cmd/tracecheck -stats /tmp/recmat_trace.json

omcheck:
	$(GO) test -run 'TestOpenMetricsRoundTrip|TestLintOpenMetricsRejects' -count=1 -v ./internal/obs
	$(GO) test -run 'TestMetriczOpenMetrics' -count=1 -v ./internal/serve

# The perf-regression gate: re-measure the standard algorithm and
# compare against the committed BENCH_9.json record. Individual points
# on a shared/bursty host swing ±30% between identical-code runs, so
# the gate aggregates rather than failing per point: it fails when the
# geometric-mean GFLOPS ratio regresses >10%, any single point
# collapses >40% (the catastrophic floor), a point's conversion share
# of end-to-end time grows >10 points (the amortized-conversion
# guard), the serve-prepacked/serve-percall speedup — measured
# within one window, so host drift cancels — drops below 1.15x, or
# the batched/looped GEMM speedup (same-window, schema 7) drops
# below 1.2x.
# n=512 keeps the gate fast; reps are high because a cold process
# needs several reps per point before page faults and heap growth stop
# dominating. -noscale: the host yardstick is a single sample with the
# same burst variance as any point, and rescaling by it injects a
# coherent scale error into all points at once — exactly what the
# geomean cannot average out. Same-host same-binary comparisons are
# better off raw; keep rescaling for cross-host diffs. A failure still
# warrants one re-run before treating it as a real regression.
bench:
	$(GO) run ./cmd/benchjson -o /tmp/bench_head.json -sizes 512 -reps 6 -algs standard -shapes ''
	$(GO) run ./cmd/benchdiff -baseline BENCH_10.json -candidate /tmp/bench_head.json -alg standard -noscale -tol 0.10 -pointtol 0.40 -convtol 0.10 -servemin 1.15 -batchmin 1.2

# The kernel acceptance benchmark: every registered kernel — packed
# pure-Go tiers and whatever assembly kernels the host unlocked —
# against the paper's unrolled4, including the 512³ GFLOPS shootout
# (BenchmarkKernels512) that gates the SIMD step function.
bench-kernel:
	$(GO) test -bench 'Kernel' -benchmem ./internal/leaf

fuzz:
	$(GO) test -fuzz FuzzKernelsVsNaive -fuzztime 30s ./internal/leaf

# Regenerate the committed benchmark record.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_10.json -reps 4
