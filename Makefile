GO ?= go

.PHONY: check build vet test race stress bench fuzz bench-json

check: build vet race stress

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection stress: the TestStress* suites run under the race
# detector with probabilistic panic/alloc/delay faults enabled at every
# instrumented site (see internal/faultinject). RECMAT_FAULTS overrides
# the default rates.
RECMAT_FAULTS ?= panic=0.002,alloc=0.005,delay=0.005/50us,seed=7
stress:
	RECMAT_FAULTS='$(RECMAT_FAULTS)' $(GO) test -race -count=3 -run 'Stress' . ./internal/core ./internal/sched

# The kernel acceptance benchmark: packed kernels vs the paper's
# unrolled4 at the default tile sizes.
bench:
	$(GO) test -bench 'Kernel' -benchmem ./internal/leaf

fuzz:
	$(GO) test -fuzz FuzzKernelsVsNaive -fuzztime 30s ./internal/leaf

# Regenerate the committed benchmark record.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_1.json
