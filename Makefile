GO ?= go

.PHONY: check build vet test race bench fuzz bench-json

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The kernel acceptance benchmark: packed kernels vs the paper's
# unrolled4 at the default tile sizes.
bench:
	$(GO) test -bench 'Kernel' -benchmem ./internal/leaf

fuzz:
	$(GO) test -fuzz FuzzKernelsVsNaive -fuzztime 30s ./internal/leaf

# Regenerate the committed benchmark record.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_1.json
