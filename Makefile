GO ?= go

.PHONY: check build vet test race stress bench bench-kernel fuzz bench-json

check: build vet race stress

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection stress: the TestStress* suites run under the race
# detector with probabilistic panic/alloc/delay faults enabled at every
# instrumented site (see internal/faultinject). RECMAT_FAULTS overrides
# the default rates.
RECMAT_FAULTS ?= panic=0.002,alloc=0.005,delay=0.005/50us,seed=7
stress:
	RECMAT_FAULTS='$(RECMAT_FAULTS)' $(GO) test -race -count=3 -run 'Stress' . ./internal/core ./internal/sched

# The perf-regression gate: re-measure the standard algorithm and fail
# if its GFLOPS fall more than 10% below the committed BENCH_3.json
# record. n=512 keeps the gate fast; reps are high because a cold
# process needs several reps per point before page faults and heap
# growth stop dominating. benchdiff rescales by the recorded host
# yardstick to cancel clock-speed drift between measurement windows;
# on shared/bursty hosts some residual noise remains, so treat a
# failure as "re-run, then investigate", not proof of a regression.
bench:
	$(GO) run ./cmd/benchjson -o /tmp/bench_head.json -sizes 512 -reps 6 -algs standard
	$(GO) run ./cmd/benchdiff -baseline BENCH_3.json -candidate /tmp/bench_head.json -alg standard -tol 0.10

# The kernel acceptance benchmark: packed kernels vs the paper's
# unrolled4 at the default tile sizes.
bench-kernel:
	$(GO) test -bench 'Kernel' -benchmem ./internal/leaf

fuzz:
	$(GO) test -fuzz FuzzKernelsVsNaive -fuzztime 30s ./internal/leaf

# Regenerate the committed benchmark record.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_3.json
