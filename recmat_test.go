package recmat

import (
	"math/rand"
	"testing"
)

func TestMulAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	A := Random(50, 40, rng)
	B := Random(40, 60, rng)
	for _, lo := range Layouts {
		for _, alg := range Algorithms {
			C := NewMatrix(50, 60)
			want := NewMatrix(50, 60)
			RefGEMM(false, false, 1, A, B, 0, want)
			if _, err := Mul(C, A, B, &Options{Layout: lo, Algorithm: alg, Workers: 2}); err != nil {
				t.Fatalf("%v/%v: %v", lo, alg, err)
			}
			if !Equal(C, want, 1e-10) {
				t.Errorf("%v/%v: max diff %g", lo, alg, MaxAbsDiff(C, want))
			}
		}
	}
}

func TestEngineReuse(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(2))
	A := Random(30, 30, rng)
	B := Random(30, 30, rng)
	want := NewMatrix(30, 30)
	RefGEMM(false, false, 1, A, B, 0, want)
	for i := 0; i < 5; i++ {
		C := NewMatrix(30, 30)
		if _, err := eng.Mul(C, A, B, &Options{Layout: Hilbert, Algorithm: Winograd}); err != nil {
			t.Fatal(err)
		}
		if !Equal(C, want, 1e-10) {
			t.Fatalf("iteration %d wrong", i)
		}
	}
	if eng.Workers() != 2 {
		t.Fatalf("Workers() = %d", eng.Workers())
	}
}

func TestEngineMulAdd(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(3))
	A := Random(20, 20, rng)
	B := Random(20, 20, rng)
	C := Random(20, 20, rng)
	want := C.Clone()
	RefGEMM(false, false, 1, A, B, 1, want)
	if _, err := eng.MulAdd(C, A, B, &Options{Layout: ZMorton}); err != nil {
		t.Fatal(err)
	}
	if !Equal(C, want, 1e-11) {
		t.Fatal("MulAdd wrong")
	}
}

func TestDGEMMFullInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	A := Random(24, 36, rng) // op(A) = Aᵀ: 36×24
	B := Random(48, 24, rng) // op(B) = Bᵀ: 24×48
	C := Random(36, 48, rng)
	want := C.Clone()
	RefGEMM(true, true, 0.5, A, B, -2, want)
	if _, err := DGEMM(true, true, 0.5, A, B, -2, C, &Options{Layout: GrayMorton, Algorithm: Strassen, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if !Equal(C, want, 1e-10) {
		t.Fatalf("DGEMM wrong: max diff %g", MaxAbsDiff(C, want))
	}
}

func TestNilOptionsDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	A := Random(10, 10, rng)
	C := NewMatrix(10, 10)
	if _, err := Mul(C, A, Identity(10), nil); err != nil {
		t.Fatal(err)
	}
	if !Equal(C, A, 1e-12) {
		t.Fatal("A·I != A with nil options")
	}
}

func TestReportContents(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(6))
	A := Random(64, 64, rng)
	B := Random(64, 64, rng)
	C := NewMatrix(64, 64)
	rep, err := eng.Mul(C, A, B, &Options{Layout: ZMorton, ForceTile: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Work != 2*64*64*64 {
		t.Errorf("work = %g", rep.Work)
	}
	if rep.Depth != 3 || rep.TileM != 8 {
		t.Errorf("depth/tile = %d/%d", rep.Depth, rep.TileM)
	}
	if rep.Parallelism() <= 1 {
		t.Errorf("parallelism = %g", rep.Parallelism())
	}
}

func TestReportArenaBytes(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(7))
	A := Random(128, 128, rng)
	B := Random(128, 128, rng)
	C := NewMatrix(128, 128)
	rep, err := eng.Mul(C, A, B, &Options{Layout: ZMorton, Algorithm: Strassen, ForceTile: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Fast algorithms reserve their whole temp tree up front; the report
	// must surface the reservation and a zero heap spill.
	if rep.ArenaBytes <= 0 {
		t.Errorf("ArenaBytes = %d, want > 0", rep.ArenaBytes)
	}
	if rep.AllocBytes != 0 {
		t.Errorf("AllocBytes = %d, want 0 (no arena fallback expected)", rep.AllocBytes)
	}
	// The standard algorithm needs no temporaries at all.
	rep2, err := eng.Mul(C, A, B, &Options{Layout: ZMorton, Algorithm: Standard, ForceTile: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ArenaBytes != 0 {
		t.Errorf("standard ArenaBytes = %d, want 0", rep2.ArenaBytes)
	}
}

func TestParseHelpers(t *testing.T) {
	if l, err := ParseLayout("z"); err != nil || l != ZMorton {
		t.Fatal("ParseLayout failed")
	}
	if a, err := ParseAlgorithm("winograd"); err != nil || a != Winograd {
		t.Fatal("ParseAlgorithm failed")
	}
	if _, err := KernelByName("blocked"); err != nil {
		t.Fatal("KernelByName failed")
	}
	if len(Kernels()) == 0 {
		t.Fatal("no kernels listed")
	}
}

func TestWorkSpanExport(t *testing.T) {
	w, s := WorkSpan(Standard, 4, 16)
	if w <= 0 || s <= 0 || Parallelism(w, s) <= 1 {
		t.Fatal("WorkSpan export broken")
	}
	wf, _ := WorkSpan(Strassen, 4, 16)
	if wf >= w {
		t.Fatal("Strassen should do less work")
	}
}
