package recmat

import (
	"math/rand"
	"testing"
)

func TestPackedMulMatchesMul(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(1))
	n := 96
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	want := NewMatrix(n, n)
	RefGEMM(false, false, 1, A, B, 0, want)

	for _, lo := range []Layout{UMorton, XMorton, ZMorton, GrayMorton, Hilbert} {
		opts := &Options{Layout: lo, Algorithm: Winograd, ForceTile: 16}
		pa, err := eng.Pack(A, opts)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := eng.Pack(B, opts)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := eng.NewPackedResult(pa, pb)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.MulPacked(pc, pa, pb, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ConvertIn != 0 || rep.ConvertOut != 0 {
			t.Errorf("%v: packed multiply reported conversion time", lo)
		}
		got, err := pc.Unpack(eng)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want, 1e-10) {
			t.Errorf("%v: packed multiply wrong (max diff %g)", lo, MaxAbsDiff(got, want))
		}
	}
}

func TestPackedChainAmortizesConversion(t *testing.T) {
	// A^4 computed with two packed squarings: only the initial Pack and
	// final Unpack convert.
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(2))
	n := 64
	A := Random(n, n, rng)
	opts := &Options{Layout: ZMorton, ForceTile: 16}
	pa, err := eng.Pack(A, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := eng.NewPackedResult(pa, pa)
	if _, err := eng.MulPacked(p2, pa, pa, opts); err != nil {
		t.Fatal(err)
	}
	p4, _ := eng.NewPackedResult(p2, p2)
	if _, err := eng.MulPacked(p4, p2, p2, opts); err != nil {
		t.Fatal(err)
	}
	got, err := p4.Unpack(eng)
	if err != nil {
		t.Fatal(err)
	}

	// Reference A^4.
	a2 := NewMatrix(n, n)
	RefGEMM(false, false, 1, A, A, 0, a2)
	a4 := NewMatrix(n, n)
	RefGEMM(false, false, 1, a2, a2, 0, a4)
	if !Equal(got, a4, 1e-9) {
		t.Fatalf("packed A^4 wrong: %g", MaxAbsDiff(got, a4))
	}
}

func TestPackedAtAndShape(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Close()
	rng := rand.New(rand.NewSource(3))
	A := Random(30, 50, rng)
	p, err := eng.Pack(A, &Options{Layout: Hilbert})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows() != 30 || p.Cols() != 50 || p.Layout() != Hilbert {
		t.Fatal("packed shape/layout wrong")
	}
	for _, ij := range [][2]int{{0, 0}, {29, 49}, {13, 27}} {
		if p.At(ij[0], ij[1]) != A.At(ij[0], ij[1]) {
			t.Fatalf("At(%d,%d) mismatch", ij[0], ij[1])
		}
	}
}

func TestPackRejectsCanonical(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Close()
	if _, err := eng.Pack(NewMatrix(4, 4), &Options{Layout: ColMajor}); err == nil {
		t.Fatal("Pack accepted a canonical layout")
	}
}

func TestPackedConformanceErrors(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Close()
	a, _ := eng.Pack(NewMatrix(64, 64), &Options{Layout: ZMorton, ForceTile: 16})
	b, _ := eng.Pack(NewMatrix(64, 64), &Options{Layout: Hilbert, ForceTile: 16})
	if _, err := eng.NewPackedResult(a, b); err == nil {
		t.Fatal("cross-layout packed product accepted")
	}
	c, _ := eng.Pack(NewMatrix(64, 64), &Options{Layout: ZMorton, ForceTile: 8})
	if _, err := eng.NewPackedResult(a, c); err == nil {
		t.Fatal("cross-depth packed product accepted")
	}
}
