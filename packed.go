package recmat

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/tile"
)

// Packed is a matrix kept resident in a recursive layout across calls —
// the usage model Frens and Wise assumed ("all matrices would be
// organized in quad-tree fashion") and that the paper's honest
// accounting contrasts with the convert-at-the-interface model. When a
// chain of multiplications reuses operands, packing once and multiplying
// many times amortizes the conversion cost that Mul/DGEMM pay per call.
//
// A Packed is created by an Engine for a specific layout and tiling and
// may only be combined with Packed matrices of the same provenance.
type Packed struct {
	t    *core.Tiled
	opts core.Options
}

// PackOptions controls packing. Layout must be one of the recursive
// layouts; tile selection follows the same rules as Mul.
func (e *Engine) Pack(A *Matrix, opts *Options) (*Packed, error) {
	o := opts.coreOptions()
	if !o.Curve.Recursive() {
		return nil, fmt.Errorf("recmat: Pack requires a recursive layout, got %v", o.Curve)
	}
	cfg := o.Tile
	if cfg == (tile.Config{}) {
		cfg = tile.DefaultConfig
	}
	var d uint
	var tr, tc int
	if o.ForceTile > 0 {
		tr, tc = o.ForceTile, o.ForceTile
		for (tr<<d) < A.Rows || (tc<<d) < A.Cols {
			d++
		}
	} else {
		ch := cfg.Pick(A.Rows, A.Cols)
		d, tr, tc = ch.D, ch.Tiles[0], ch.Tiles[1]
	}
	t := core.NewTiled(o.Curve, d, tr, tc, A.Rows, A.Cols)
	if err := t.Pack(context.Background(), e.pool, A, false, 1); err != nil {
		return nil, err
	}
	return &Packed{t: t, opts: o}, nil
}

// Rows and Cols return the logical shape.
func (p *Packed) Rows() int { return p.t.Rows }
func (p *Packed) Cols() int { return p.t.Cols }

// Layout returns the packed layout.
func (p *Packed) Layout() Layout { return p.t.Curve }

// Unpack converts back to a column-major matrix. It fails (rather than
// panicking) when the engine has been closed.
func (p *Packed) Unpack(e *Engine) (*Matrix, error) {
	d := NewMatrix(p.t.Rows, p.t.Cols)
	if err := p.t.Unpack(context.Background(), e.pool, d); err != nil {
		return nil, err
	}
	return d, nil
}

// At reads one element through the layout function (slow; for spot
// checks, not inner loops).
func (p *Packed) At(i, j int) float64 { return p.t.At(i, j) }

// NewPackedResult allocates a zeroed Packed conformable as the product
// of a and b (a.Rows × b.Cols, tiles a.TR × b.TC).
func (e *Engine) NewPackedResult(a, b *Packed) (*Packed, error) {
	if err := conformable(a, b); err != nil {
		return nil, err
	}
	t := core.NewTiled(a.t.Curve, a.t.D, a.t.TR, b.t.TC, a.t.Rows, b.t.Cols)
	return &Packed{t: t, opts: a.opts}, nil
}

func conformable(a, b *Packed) error {
	if a.t.Curve != b.t.Curve {
		return fmt.Errorf("recmat: packed layouts differ: %v vs %v", a.t.Curve, b.t.Curve)
	}
	if a.t.D != b.t.D {
		return fmt.Errorf("recmat: packed depths differ: %d vs %d", a.t.D, b.t.D)
	}
	if a.t.TC != b.t.TR {
		return fmt.Errorf("recmat: packed tiles do not conform: %dx%d · %dx%d",
			a.t.TR, a.t.TC, b.t.TR, b.t.TC)
	}
	return nil
}

// MulPacked computes C += A·B entirely in the packed layout: no
// conversion happens, so the Report's conversion fields are zero. The
// operands must have been packed with the same layout, depth, and
// conforming tile shapes (pack both inputs with the same ForceTile, or
// pack square same-size matrices, to guarantee this).
func (e *Engine) MulPacked(C, A, B *Packed, opts *Options) (*Report, error) {
	return e.MulPackedContext(context.Background(), C, A, B, opts)
}

// MulPackedContext is MulPacked with cooperative cancellation. On
// cancellation or error the packed C must be considered corrupt: the
// multiplication accumulates into it in place, so partial quadrant
// products may already be present.
func (e *Engine) MulPackedContext(ctx context.Context, C, A, B *Packed, opts *Options) (*Report, error) {
	o := opts.coreOptions()
	o.Curve = C.t.Curve
	return core.MulTiledCtx(ctx, e.pool, o, C.t, A.t, B.t)
}
