package recmat

import (
	"context"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Engine owns a fixed pool of workers (the stand-in for the paper's
// Cilk runtime) and runs multiplications on it. Create one Engine per
// desired processor count, reuse it across calls, and Close it when
// done. An Engine is safe for sequential reuse; concurrent calls on the
// same Engine serialize correctness-wise but share workers, so prefer
// one Engine per concurrent caller.
type Engine struct {
	pool *sched.Pool
	// metrics aggregates per-call counters and histograms across the
	// engine's lifetime; see Engine.Metrics.
	metrics *obs.Registry
	// traceMu serializes EnableTracing/DisableTracing. The active
	// tracer itself is read by workers through package obs's atomic
	// pointer, never through these fields.
	traceMu sync.Mutex
	tracer  *obs.Tracer
	traceW  io.Writer
}

// NewEngine creates an engine with the given number of workers
// (0 = one per CPU).
func NewEngine(workers int) *Engine {
	return &Engine{pool: sched.NewPool(workers), metrics: obs.NewRegistry()}
}

// Workers returns the engine's worker count.
func (e *Engine) Workers() int { return e.pool.Workers() }

// SchedStats is a snapshot of the engine's scheduling counters: spawned
// (stealable) tasks, steals, and inline-executed frames — the analogue
// of the Cilk runtime instrumentation the paper's critique discusses.
type SchedStats = sched.PoolStats

// SchedulerStats returns the cumulative scheduling counters.
func (e *Engine) SchedulerStats() SchedStats { return e.pool.Stats() }

// ResetSchedulerStats zeroes the scheduling counters.
func (e *Engine) ResetSchedulerStats() { e.pool.ResetStats() }

// Close releases the engine's workers. It is idempotent and safe to
// call concurrently; calls on a closed engine return ErrPoolClosed
// rather than panicking.
func (e *Engine) Close() { e.pool.Close() }

// Mul computes C = A·B on the engine's workers.
func (e *Engine) Mul(C, A, B *Matrix, opts *Options) (*Report, error) {
	return e.DGEMM(false, false, 1, A, B, 0, C, opts)
}

// MulAdd computes C += A·B on the engine's workers.
func (e *Engine) MulAdd(C, A, B *Matrix, opts *Options) (*Report, error) {
	return e.DGEMM(false, false, 1, A, B, 1, C, opts)
}

// MulContext computes C = A·B with cooperative cancellation; see
// DGEMMContext for the cancellation and failure semantics.
func (e *Engine) MulContext(ctx context.Context, C, A, B *Matrix, opts *Options) (*Report, error) {
	return e.DGEMMContext(ctx, false, false, 1, A, B, 0, C, opts)
}

// DGEMM computes C ← α·op(A)·op(B) + β·C on the engine's workers.
func (e *Engine) DGEMM(transA, transB bool, alpha float64, A, B *Matrix, beta float64, C *Matrix, opts *Options) (*Report, error) {
	return e.DGEMMContext(context.Background(), transA, transB, alpha, A, B, beta, C, opts)
}

// DGEMMContext is DGEMM with cooperative cancellation. Cancellation is
// checked between scheduler tasks, at every spawn point, and at each
// level of the recursion, so a cancelled context aborts the run within
// roughly one leaf-kernel latency; the returned error wraps the
// context's cause. On cancellation or failure C holds the β-scaled
// input plus any fully completed output blocks — never a partially
// written block product — and the error reports how far the computation
// got. Worker panics never escape: they surface as a *TaskError
// aggregating every sibling panic with stacks.
func (e *Engine) DGEMMContext(ctx context.Context, transA, transB bool, alpha float64, A, B *Matrix, beta float64, C *Matrix, opts *Options) (*Report, error) {
	co := opts.coreOptions()
	co.Metrics = e.metrics
	return core.GEMMCtx(ctx, e.pool, co, transA, transB, alpha, A, B, beta, C)
}

// WorkSpan returns the analytic work and span, in flops, of one
// algorithm on a 2^depth grid of t×t tiles — the idealized counterpart
// of the Report's runtime accounting, useful for predicting available
// parallelism before running.
func WorkSpan(alg Algorithm, depth uint, t int) (work, span float64) {
	return core.WorkSpan(alg, depth, t)
}

// Parallelism returns work/span.
func Parallelism(work, span float64) float64 { return sched.Parallelism(work, span) }
