package recmat

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestEngineAfterCloseReturnsError(t *testing.T) {
	eng := NewEngine(2)
	eng.Close()
	eng.Close() // idempotent
	A := Identity(8)
	C := NewMatrix(8, 8)
	if _, err := eng.Mul(C, A, A, nil); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Mul on closed engine: err = %v, want ErrPoolClosed", err)
	}
	if _, err := eng.Pack(Identity(16), &Options{Layout: ZMorton}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Pack on closed engine: err = %v, want ErrPoolClosed", err)
	}
}

func TestDGEMMRejectsNonFinite(t *testing.T) {
	A := Identity(8)
	C := NewMatrix(8, 8)
	if _, err := DGEMM(false, false, math.NaN(), A, A, 0, C, nil); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
	if _, err := DGEMM(false, false, 1, A, A, math.Inf(1), C, nil); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
}

func TestOptionsMemBudgetPassthrough(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(21))
	n := 128
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	C := NewMatrix(n, n)
	rep, err := eng.Mul(C, A, B, &Options{
		Layout: ZMorton, Algorithm: Strassen, ForceTile: 16, MemBudget: 600_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) == 0 || rep.Alg == Strassen {
		t.Fatalf("MemBudget not honored through Options: alg=%v notes=%v", rep.Alg, rep.Degraded)
	}
	if _, err := eng.Mul(C, A, B, &Options{
		Layout: ZMorton, Algorithm: Strassen, ForceTile: 16, MemBudget: 100,
	}); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("err = %v, want ErrMemBudget", err)
	}
}

func TestOptionsResidualGrowthPassthrough(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(22))
	n := 64
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	C := NewMatrix(n, n)
	rep, err := eng.Mul(C, A, B, &Options{
		Layout: ZMorton, Algorithm: Winograd, ForceTile: 16, MaxResidualGrowth: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alg != Standard || len(rep.Degraded) == 0 {
		t.Fatalf("MaxResidualGrowth not honored: alg=%v notes=%v", rep.Alg, rep.Degraded)
	}
}

func TestGEMMContextCancelLatency(t *testing.T) {
	// The acceptance bound: cancelling a 2048³ multiply returns a
	// wrapped context error within 250 ms and leaks no goroutines.
	if testing.Short() {
		t.Skip("2048³ multiply in -short mode")
	}
	eng := NewEngine(0)
	defer eng.Close()
	rng := rand.New(rand.NewSource(23))
	n := 2048
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	C := NewMatrix(n, n)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := eng.MulContext(ctx, C, A, B, &Options{Layout: ZMorton, Algorithm: Strassen})
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // well inside the multi-second compute
	t0 := time.Now()
	cancel()
	select {
	case err := <-errc:
		lat := time.Since(t0)
		if err == nil {
			t.Fatal("2048³ multiply finished before cancellation — cannot measure latency")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
		if lat > 250*time.Millisecond {
			t.Fatalf("cancellation latency %v, want <= 250ms", lat)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled multiply never returned")
	}

	// No goroutines may outlive the cancelled run.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancel: %d -> %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGEMMContextDeadline(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(24))
	n := 512
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	C := NewMatrix(n, n)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := eng.DGEMMContext(ctx, false, false, 1, A, B, 0, C, &Options{Layout: Hilbert})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped DeadlineExceeded", err)
	}
}

func TestGEMMContextPackageFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n := 64
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	want := NewMatrix(n, n)
	RefGEMM(false, false, 1, A, B, 0, want)
	C := NewMatrix(n, n)
	if _, err := GEMMContext(context.Background(), false, false, 1, A, B, 0, C, nil); err != nil {
		t.Fatal(err)
	}
	if !Equal(C, want, 1e-10) {
		t.Fatalf("GEMMContext wrong (max diff %g)", MaxAbsDiff(C, want))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GEMMContext(ctx, false, false, 1, A, B, 0, C, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled GEMMContext: err = %v", err)
	}
}

func TestStressPublicAPINoEscapingPanics(t *testing.T) {
	// Under fault injection no panic may escape any public entry point,
	// and every failure must unwrap to the injected *Fault.
	if !faultinject.Enabled() {
		faultinject.Configure(faultinject.Config{
			PanicProb: 0.01, AllocProb: 0.02, DelayProb: 0.01,
			Delay: 50 * time.Microsecond, Seed: 7,
		})
		defer faultinject.Disable()
	}
	eng := NewEngine(4)
	defer eng.Close()
	rng := rand.New(rand.NewSource(26))
	n := 96
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	want := NewMatrix(n, n)
	RefGEMM(false, false, 1, A, B, 0, want)

	for i := 0; i < 25; i++ {
		C := NewMatrix(n, n)
		opts := &Options{
			Layout:    []Layout{ColMajor, ZMorton, Hilbert}[i%3],
			Algorithm: []Algorithm{Standard, Strassen, Winograd}[i%3],
			ForceTile: 16,
		}
		_, err := eng.Mul(C, A, B, opts)
		if err == nil {
			if !Equal(C, want, 1e-10) {
				t.Fatalf("iter %d: successful run under faults is wrong", i)
			}
			continue
		}
		var fault *faultinject.Fault
		if !errors.As(err, &fault) {
			t.Fatalf("iter %d: error does not unwrap to injected fault: %v", i, err)
		}
		var te *TaskError
		if errors.As(err, &te) {
			for _, pe := range te.Panics {
				if len(pe.Stack) == 0 {
					t.Fatalf("iter %d: aggregated panic missing worker stack", i)
				}
			}
		}
	}
}
