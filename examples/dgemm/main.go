// dgemm demonstrates the full Level 3 BLAS interface the paper adopts
// (Section 2.1): C ← α·op(A)·op(B) + β·C with transposes, scalars,
// rectangular operands, and the wide/lean shapes that trigger the
// Figure 3 submatrix decomposition — the kind of call a linear-algebra
// code built on this library would make.
package main

import (
	"fmt"
	"log"
	"math/rand"

	recmat "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	eng := recmat.NewEngine(0)
	defer eng.Close()
	opts := &recmat.Options{Layout: recmat.Hilbert, Algorithm: recmat.Strassen}

	// 1. A rank-k update: C ← 1.0·A·Aᵀ + 0.0·C with rectangular A.
	A := recmat.Random(600, 120, rng)
	C := recmat.NewMatrix(600, 600)
	rep, err := eng.DGEMM(false, true, 1, A, A, 0, C, opts)
	check(err)
	fmt.Printf("rank-120 update (600x120 · 120x600):\n")
	fmt.Printf("  %d block products after wide/lean splitting, %v total\n",
		rep.Blocks, rep.Total())
	// A·Aᵀ is symmetric: check a sample.
	if d := C.At(3, 77) - C.At(77, 3); d > 1e-12 || d < -1e-12 {
		log.Fatalf("A·Aᵀ not symmetric: %g", d)
	}
	fmt.Println("  symmetry check passed")

	// 2. Accumulating update with both scalars: C ← -0.5·Aᵀ·B + 2·C.
	At := recmat.Random(80, 300, rng) // op(A) = Atᵀ is 300×80
	B := recmat.Random(80, 200, rng)
	C2 := recmat.Random(300, 200, rng)
	want := C2.Clone()
	recmat.RefGEMM(true, false, -0.5, At, B, 2, want)
	_, err = eng.DGEMM(true, false, -0.5, At, B, 2, C2, opts)
	check(err)
	fmt.Printf("accumulating update (α=-0.5, β=2, op(A)=Aᵀ):\n")
	fmt.Printf("  max |error| vs reference: %.2g\n", recmat.MaxAbsDiff(C2, want))

	// 3. A very lean shape: (40×2000)·(2000×40). The tile constraint of
	// equation (2) cannot hold for this aspect ratio, so the driver
	// cuts the inner dimension into squat pieces (Figure 3).
	L := recmat.Random(40, 2000, rng)
	R := recmat.Random(2000, 40, rng)
	C3 := recmat.NewMatrix(40, 40)
	rep, err = eng.Mul(C3, L, R, opts)
	check(err)
	want3 := recmat.NewMatrix(40, 40)
	recmat.RefGEMM(false, false, 1, L, R, 0, want3)
	fmt.Printf("lean·wide product (40x2000 · 2000x40):\n")
	fmt.Printf("  split into %d squat block products, max |error| %.2g\n",
		rep.Blocks, recmat.MaxAbsDiff(C3, want3))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
