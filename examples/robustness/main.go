// robustness is a miniature of the paper's Figure 5 experiment plus its
// memory-system explanation: it times the standard algorithm under the
// canonical and Z-Morton layouts across a range of matrix sizes, then
// uses the cache simulator to show the self-interference misses that
// drive the canonical layout's variability.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	recmat "repro"
	"repro/internal/cachesim"
	"repro/internal/layout"
)

func main() {
	eng := recmat.NewEngine(0)
	defer eng.Close()

	fmt.Println("execution time, standard algorithm (best of 3):")
	fmt.Printf("%6s %14s %14s\n", "n", "ColMajor", "Z-Morton")
	for n := 380; n <= 420; n += 8 {
		rng := rand.New(rand.NewSource(int64(n)))
		A := recmat.Random(n, n, rng)
		B := recmat.Random(n, n, rng)
		C := recmat.NewMatrix(n, n)
		row := make([]time.Duration, 0, 2)
		for _, lo := range []recmat.Layout{recmat.ColMajor, recmat.ZMorton} {
			var best time.Duration
			for r := 0; r < 3; r++ {
				t0 := time.Now()
				if _, err := eng.Mul(C, A, B, &recmat.Options{Layout: lo}); err != nil {
					log.Fatal(err)
				}
				if el := time.Since(t0); best == 0 || el < best {
					best = el
				}
			}
			row = append(row, best)
		}
		fmt.Printf("%6d %14v %14v\n", n, row[0].Round(time.Microsecond), row[1].Round(time.Microsecond))
	}

	fmt.Println("\nsimulated L1 misses of the full leaf-level address stream")
	fmt.Println("(UltraSPARC-like hierarchy scaled down; one processor):")
	fmt.Printf("%6s %14s %14s %10s\n", "n", "ColMajor", "Z-Morton", "ratio")
	for _, n := range []int{96, 112, 128, 144, 160} {
		t := n / 8 // 8×8 grid of tiles at every size
		can := cachesim.MatmulSim{N: n, T: t, Curve: layout.ColMajor, Procs: 1, Cfg: cachesim.Small}.Run()
		rec := cachesim.MatmulSim{N: n, T: t, Curve: layout.ZMorton, Procs: 1, Cfg: cachesim.Small}.Run()
		fmt.Printf("%6d %14d %14d %9.2fx\n", n, can.L1.Misses, rec.L1.Misses,
			float64(can.L1.Misses)/float64(rec.L1.Misses))
	}
	fmt.Println("\n(the recursive layout's contiguous tiles avoid the self-interference")
	fmt.Println(" that makes the canonical layout's miss counts — and therefore its")
	fmt.Println(" execution times in Figure 5 — swing with the matrix size.)")
}
