// parallel measures how the three algorithms scale across worker counts
// and compares the measured speedups with the available parallelism the
// work/span instrumentation predicts — the Section 5 scalability story
// of the paper, on your machine.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	recmat "repro"
)

func main() {
	const n = 700
	rng := rand.New(rand.NewSource(3))
	A := recmat.Random(n, n, rng)
	B := recmat.Random(n, n, rng)
	C := recmat.NewMatrix(n, n)

	maxW := runtime.GOMAXPROCS(0)
	fmt.Printf("scaling study, n=%d, layouts Z-Morton, up to %d workers\n\n", n, maxW)
	fmt.Printf("%-10s", "algorithm")
	for w := 1; w <= maxW; w *= 2 {
		fmt.Printf(" %10s", fmt.Sprintf("%d worker", w))
	}
	fmt.Printf(" %12s\n", "parallelism")

	for _, alg := range []recmat.Algorithm{recmat.Standard, recmat.Strassen, recmat.Winograd} {
		fmt.Printf("%-10v", alg)
		var t1 time.Duration
		var lastRep *recmat.Report
		for w := 1; w <= maxW; w *= 2 {
			eng := recmat.NewEngine(w)
			best := time.Duration(0)
			for r := 0; r < 3; r++ {
				t0 := time.Now()
				rep, err := eng.Mul(C, A, B, &recmat.Options{Layout: recmat.ZMorton, Algorithm: alg})
				if err != nil {
					log.Fatal(err)
				}
				el := time.Since(t0)
				if best == 0 || el < best {
					best = el
				}
				lastRep = rep
			}
			eng.Close()
			if w == 1 {
				t1 = best
				fmt.Printf(" %10v", best.Round(time.Millisecond))
			} else {
				fmt.Printf(" %9.2fx", float64(t1)/float64(best))
			}
		}
		fmt.Printf(" %12.0f\n", lastRep.Parallelism())
	}
	fmt.Println("\n(speedup columns are relative to 1 worker; the parallelism column is")
	fmt.Println(" the accounted work/span of the task DAG — the analogue of the Cilk")
	fmt.Println(" critical-path measurement the paper used to argue there is plenty of")
	fmt.Println(" parallelism for the machine sizes of interest.)")
}
