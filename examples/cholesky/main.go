// cholesky demonstrates the BLAS-3 layer built on the recursive-layout
// multiplication: factor a symmetric positive-definite system with the
// recursive Cholesky (whose bulk flops are Strassen multiplications over
// the Hilbert layout) and solve a linear system with it — the "fast
// matrix multiplication is all you need for BLAS 3" argument the paper
// cites from the ATLAS project, made concrete.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	recmat "repro"
)

func main() {
	const n = 800
	rng := rand.New(rand.NewSource(42))

	// Build a well-conditioned SPD matrix A = GᵀG + n·I.
	G := recmat.Random(n, n, rng)
	A := recmat.NewMatrix(n, n)
	recmat.RefGEMM(true, false, 1, G, G, 0, A)
	for i := 0; i < n; i++ {
		A.Set(i, i, A.At(i, i)+float64(n))
	}
	B := recmat.Random(n, 4, rng) // four right-hand sides

	eng := recmat.NewEngine(0)
	defer eng.Close()
	opts := &recmat.Options{Layout: recmat.Hilbert, Algorithm: recmat.Strassen}

	t0 := time.Now()
	L, err := eng.Cholesky(A, opts)
	if err != nil {
		log.Fatal(err)
	}
	tFactor := time.Since(t0)

	// Check the factorization: ‖L·Lᵀ − A‖∞.
	rec := recmat.NewMatrix(n, n)
	if _, err := eng.DGEMM(false, true, 1, L, L, 0, rec, opts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cholesky of %dx%d SPD matrix in %v (Strassen over Hilbert layout)\n", n, n, tFactor)
	fmt.Printf("  ‖L·Lᵀ − A‖∞ = %.3g\n", recmat.MaxAbsDiff(rec, A))

	// Solve A·X = B and report the residual.
	X := B.Clone()
	t1 := time.Now()
	if err := eng.TRSM(false, false, 1, L, X, opts); err != nil {
		log.Fatal(err)
	}
	if err := eng.TRSM(false, true, 1, L, X, opts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  solved %d right-hand sides in %v\n", B.Cols, time.Since(t1))

	res := B.Clone()
	recmat.RefGEMM(false, false, -1, A, X, 1, res)
	fmt.Printf("  max residual ‖A·x − b‖∞ = %.3g\n", res.MaxAbs())
}
