// Quickstart: multiply two matrices with a recursive layout and the
// standard algorithm, verify against the naive reference, and look at
// the cost breakdown the library reports.
package main

import (
	"fmt"
	"log"
	"math/rand"

	recmat "repro"
)

func main() {
	const n = 500
	rng := rand.New(rand.NewSource(1))
	A := recmat.Random(n, n, rng)
	B := recmat.Random(n, n, rng)
	C := recmat.NewMatrix(n, n)

	// An Engine owns the worker pool; reuse it across multiplications.
	eng := recmat.NewEngine(0) // 0 = one worker per CPU
	defer eng.Close()

	report, err := eng.Mul(C, A, B, &recmat.Options{
		Layout:    recmat.ZMorton, // recursive Z-Morton (Lebesgue) layout
		Algorithm: recmat.Standard,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("multiplied %dx%d matrices on %d workers\n", n, n, eng.Workers())
	fmt.Printf("  tiling: %d levels of recursion over %dx%d tiles (padded to %d)\n",
		report.Depth, report.TileM, report.TileN, report.PaddedM)
	fmt.Printf("  layout conversion in:  %v\n", report.ConvertIn)
	fmt.Printf("  multiplication:        %v\n", report.Compute)
	fmt.Printf("  layout conversion out: %v\n", report.ConvertOut)
	fmt.Printf("  DAG parallelism (work/span): %.0f\n", report.Parallelism())

	// Verify against the naive O(n³) reference.
	want := recmat.NewMatrix(n, n)
	recmat.RefGEMM(false, false, 1, A, B, 0, want)
	fmt.Printf("  max |error| vs reference: %.2g\n", recmat.MaxAbsDiff(C, want))
}
