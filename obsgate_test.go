package recmat

import (
	"bytes"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
)

// This file is the `make obs-gate` acceptance suite, env-gated behind
// RECMAT_OBS_GATE because it measures wall time and belongs in the
// dedicated gate target, not in every `go test ./...` run.
//
// The overhead bound is computed in one process rather than by
// comparing two timed runs: cross-run wall-clock comparison at the 2%
// level is hopeless on a shared host (individual runs swing far more
// than 2% between identical binaries). Instead the gate measures the
// two quantities the disabled-path cost actually factors into —
// (a) the cost of one disabled tracepoint (an atomic load and a
// branch), measured in a tight loop, and (b) the number of tracepoints
// a real multiply executes, counted by tracing that same multiply —
// and bounds their product against the multiply's wall time.

func obsGateEnabled(t *testing.T) {
	t.Helper()
	if os.Getenv("RECMAT_OBS_GATE") == "" {
		t.Skip("set RECMAT_OBS_GATE=1 to run the observability gates (make obs-gate)")
	}
}

// gateWorkload runs the gate's reference multiply: one 512³ Strassen
// multiply in Z-Morton layout, returning the wall time.
func gateWorkload(t *testing.T, eng *Engine, A, B *Matrix) time.Duration {
	t.Helper()
	C := NewMatrix(512, 512)
	t0 := time.Now()
	if _, err := eng.Mul(C, A, B, &Options{Layout: ZMorton, Algorithm: Strassen}); err != nil {
		t.Fatal(err)
	}
	return time.Since(t0)
}

func TestObsGateDisabledOverhead(t *testing.T) {
	obsGateEnabled(t)
	eng := NewEngine(0)
	defer eng.Close()
	rng := rand.New(rand.NewSource(41))
	A := Random(512, 512, rng)
	B := Random(512, 512, rng)

	// (b) Tracepoint count: trace the workload once and count every
	// recorded event plus every wrapped-away drop. Each corresponds to
	// one tracepoint whose disabled form is the Cur() nil check.
	var buf bytes.Buffer
	if err := eng.EnableTracing(&buf); err != nil {
		t.Fatal(err)
	}
	gateWorkload(t, eng, A, B)
	if err := eng.DisableTracing(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	points := float64(sum.Spans+sum.Instants) + float64(sum.Dropped)

	// (a) Per-tracepoint disabled cost: with no tracer installed,
	// obs.Cur() in a loop. The atomic load cannot be hoisted, so this
	// is the real steady-state branch-plus-load cost.
	const probes = 20_000_000
	var sink int
	p0 := time.Now()
	for i := 0; i < probes; i++ {
		if tr := obs.Cur(); tr != nil {
			sink++
		}
	}
	perProbe := time.Since(p0).Seconds() / probes
	runtime.KeepAlive(sink)

	// Untraced wall time: best of 3 to shed cold-cache noise.
	wall := gateWorkload(t, eng, A, B)
	for i := 0; i < 2; i++ {
		if w := gateWorkload(t, eng, A, B); w < wall {
			wall = w
		}
	}

	overhead := points * perProbe
	share := overhead / wall.Seconds()
	t.Logf("disabled-tracer bound: %0.f tracepoints x %.2fns = %v over %v wall (%.4f%%)",
		points, perProbe*1e9, time.Duration(overhead*1e9), wall, 100*share)
	if share > 0.02 {
		t.Fatalf("disabled-tracer overhead bound %.2f%% of n=512 wall exceeds the 2%% gate", 100*share)
	}
}

// TestObsGateLedgerOverhead bounds the ALWAYS-ON request-ledger cost
// of the serving layer: per request, one trace-serial allocation, one
// ledger ring Record, and one histogram Observe per phase. Like the
// disabled-tracer gate, the bound is computed in one process — the
// per-request ledger cost is measured in a tight loop and compared
// against the wall time of the smallest plausible served multiply
// (64³), the request shape where fixed overhead bites hardest.
func TestObsGateLedgerOverhead(t *testing.T) {
	obsGateEnabled(t)
	eng := NewEngine(0)
	defer eng.Close()
	rng := rand.New(rand.NewSource(43))
	A := Random(64, 64, rng)
	B := Random(64, 64, rng)
	C := NewMatrix(64, 64)

	// Per-request ledger pipeline cost, amortized over a tight loop.
	ring := obs.NewLedgerRing(obs.DefaultLedgerCap)
	reg := obs.NewRegistry()
	var hists [obs.NumReqPhases]*obs.Histogram
	for p := obs.ReqPhase(0); p < obs.NumReqPhases; p++ {
		hists[p] = reg.Histogram("req_phase_"+p.String()+"_seconds", obs.SecondsBuckets)
	}
	const reqs = 200_000
	l0 := time.Now()
	for i := 0; i < reqs; i++ {
		led := obs.Ledger{ID: "gate", Trace: obs.NextTraceSerial(), Tenant: "t", M: 64, K: 64, N: 64}
		for p := obs.ReqPhase(0); p < obs.NumReqPhases; p++ {
			led.PhaseNS[p] = int64(i + 1)
			hists[p].Observe(float64(i+1) / 1e9)
		}
		ring.Record(led)
	}
	perReq := time.Since(l0).Seconds() / reqs

	// Smallest-request wall time: best of 5.
	mul := func() time.Duration {
		t0 := time.Now()
		if _, err := eng.Mul(C, A, B, &Options{}); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	wall := mul()
	for i := 0; i < 4; i++ {
		if w := mul(); w < wall {
			wall = w
		}
	}

	share := perReq / wall.Seconds()
	t.Logf("ledger bound: %.0fns per request over %v min-request wall (%.4f%%)",
		perReq*1e9, wall, 100*share)
	if share > 0.02 {
		t.Fatalf("enabled-ledger overhead %.2f%% of a 64³ request exceeds the 2%% gate", 100*share)
	}
}

func TestObsGateTraceExport(t *testing.T) {
	obsGateEnabled(t)
	eng := NewEngine(0)
	defer eng.Close()
	rng := rand.New(rand.NewSource(42))
	A := Random(512, 512, rng)
	B := Random(512, 512, rng)

	var buf bytes.Buffer
	if err := eng.EnableTracing(&buf); err != nil {
		t.Fatal(err)
	}
	gateWorkload(t, eng, A, B)
	if err := eng.DisableTracing(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("512³ Strassen trace invalid: %v", err)
	}
	if sum.Spans == 0 || sum.Instants == 0 {
		t.Fatalf("512³ Strassen trace too thin: %+v", sum)
	}
	t.Logf("trace: %d events (%d spans, %d instants) on %d tracks, %d dropped",
		sum.Events, sum.Spans, sum.Instants, sum.Tracks, sum.Dropped)
}
