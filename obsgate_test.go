package recmat

import (
	"bytes"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
)

// This file is the `make obs-gate` acceptance suite, env-gated behind
// RECMAT_OBS_GATE because it measures wall time and belongs in the
// dedicated gate target, not in every `go test ./...` run.
//
// The overhead bound is computed in one process rather than by
// comparing two timed runs: cross-run wall-clock comparison at the 2%
// level is hopeless on a shared host (individual runs swing far more
// than 2% between identical binaries). Instead the gate measures the
// two quantities the disabled-path cost actually factors into —
// (a) the cost of one disabled tracepoint (an atomic load and a
// branch), measured in a tight loop, and (b) the number of tracepoints
// a real multiply executes, counted by tracing that same multiply —
// and bounds their product against the multiply's wall time.

func obsGateEnabled(t *testing.T) {
	t.Helper()
	if os.Getenv("RECMAT_OBS_GATE") == "" {
		t.Skip("set RECMAT_OBS_GATE=1 to run the observability gates (make obs-gate)")
	}
}

// gateWorkload runs the gate's reference multiply: one 512³ Strassen
// multiply in Z-Morton layout, returning the wall time.
func gateWorkload(t *testing.T, eng *Engine, A, B *Matrix) time.Duration {
	t.Helper()
	C := NewMatrix(512, 512)
	t0 := time.Now()
	if _, err := eng.Mul(C, A, B, &Options{Layout: ZMorton, Algorithm: Strassen}); err != nil {
		t.Fatal(err)
	}
	return time.Since(t0)
}

func TestObsGateDisabledOverhead(t *testing.T) {
	obsGateEnabled(t)
	eng := NewEngine(0)
	defer eng.Close()
	rng := rand.New(rand.NewSource(41))
	A := Random(512, 512, rng)
	B := Random(512, 512, rng)

	// (b) Tracepoint count: trace the workload once and count every
	// recorded event plus every wrapped-away drop. Each corresponds to
	// one tracepoint whose disabled form is the Cur() nil check.
	var buf bytes.Buffer
	if err := eng.EnableTracing(&buf); err != nil {
		t.Fatal(err)
	}
	gateWorkload(t, eng, A, B)
	if err := eng.DisableTracing(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	points := float64(sum.Spans+sum.Instants) + float64(sum.Dropped)

	// (a) Per-tracepoint disabled cost: with no tracer installed,
	// obs.Cur() in a loop. The atomic load cannot be hoisted, so this
	// is the real steady-state branch-plus-load cost.
	const probes = 20_000_000
	var sink int
	p0 := time.Now()
	for i := 0; i < probes; i++ {
		if tr := obs.Cur(); tr != nil {
			sink++
		}
	}
	perProbe := time.Since(p0).Seconds() / probes
	runtime.KeepAlive(sink)

	// Untraced wall time: best of 3 to shed cold-cache noise.
	wall := gateWorkload(t, eng, A, B)
	for i := 0; i < 2; i++ {
		if w := gateWorkload(t, eng, A, B); w < wall {
			wall = w
		}
	}

	overhead := points * perProbe
	share := overhead / wall.Seconds()
	t.Logf("disabled-tracer bound: %0.f tracepoints x %.2fns = %v over %v wall (%.4f%%)",
		points, perProbe*1e9, time.Duration(overhead*1e9), wall, 100*share)
	if share > 0.02 {
		t.Fatalf("disabled-tracer overhead bound %.2f%% of n=512 wall exceeds the 2%% gate", 100*share)
	}
}

func TestObsGateTraceExport(t *testing.T) {
	obsGateEnabled(t)
	eng := NewEngine(0)
	defer eng.Close()
	rng := rand.New(rand.NewSource(42))
	A := Random(512, 512, rng)
	B := Random(512, 512, rng)

	var buf bytes.Buffer
	if err := eng.EnableTracing(&buf); err != nil {
		t.Fatal(err)
	}
	gateWorkload(t, eng, A, B)
	if err := eng.DisableTracing(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("512³ Strassen trace invalid: %v", err)
	}
	if sum.Spans == 0 || sum.Instants == 0 {
		t.Fatalf("512³ Strassen trace too thin: %+v", sum)
	}
	t.Logf("trace: %d events (%d spans, %d instants) on %d tracks, %d dropped",
		sum.Events, sum.Spans, sum.Instants, sum.Tracks, sum.Dropped)
}
