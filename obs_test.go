package recmat

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestSchedulerStats pins the counter contract of the public
// scheduler-stats surface: counters only grow across calls, successful
// steals never outnumber spawned tasks (a steal takes a task that was
// spawned), and ResetSchedulerStats restarts the count from zero.
func TestSchedulerStats(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	rng := rand.New(rand.NewSource(31))
	n := 128
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	opts := &Options{Layout: ZMorton, Algorithm: Strassen, ForceTile: 16}

	prev := eng.SchedulerStats()
	if prev.Spawns != 0 || prev.Steals != 0 || prev.Inline != 0 {
		t.Fatalf("fresh engine has non-zero scheduler stats: %+v", prev)
	}
	for i := 0; i < 3; i++ {
		C := NewMatrix(n, n)
		if _, err := eng.Mul(C, A, B, opts); err != nil {
			t.Fatal(err)
		}
		cur := eng.SchedulerStats()
		if cur.Spawns < prev.Spawns || cur.Steals < prev.Steals || cur.Inline < prev.Inline {
			t.Fatalf("call %d: counters regressed: %+v -> %+v", i, prev, cur)
		}
		if cur.Spawns == prev.Spawns {
			t.Fatalf("call %d: a 128³ Strassen multiply spawned no tasks", i)
		}
		if cur.Steals > cur.Spawns {
			t.Fatalf("call %d: steals %d exceed spawns %d", i, cur.Steals, cur.Spawns)
		}
		prev = cur
	}
	eng.ResetSchedulerStats()
	if s := eng.SchedulerStats(); s.Spawns != 0 || s.Steals != 0 || s.Inline != 0 {
		t.Fatalf("stats after reset: %+v, want zeroes", s)
	}
}

// TestEngineTracing exercises the public tracing lifecycle end to end:
// enable, run traced multiplications, disable, and check the exported
// Chrome trace validates and contains worker activity plus per-call
// lanes.
func TestEngineTracing(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	rng := rand.New(rand.NewSource(32))
	n := 96
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	want := NewMatrix(n, n)
	RefGEMM(false, false, 1, A, B, 0, want)

	if err := eng.EnableTracing(nil); err == nil {
		t.Fatal("EnableTracing(nil) succeeded")
	}
	if err := eng.DisableTracing(); err == nil {
		t.Fatal("DisableTracing without EnableTracing succeeded")
	}
	var buf bytes.Buffer
	if err := eng.EnableTracing(&buf); err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableTracing(&buf); err == nil {
		t.Fatal("double EnableTracing succeeded")
	}
	for _, alg := range []Algorithm{Standard, Strassen} {
		C := NewMatrix(n, n)
		if _, err := eng.Mul(C, A, B, &Options{Layout: ZMorton, Algorithm: alg, ForceTile: 16}); err != nil {
			t.Fatal(err)
		}
		if !Equal(C, want, 1e-10) {
			t.Fatalf("%v traced result wrong (max diff %g)", alg, MaxAbsDiff(C, want))
		}
	}
	if err := eng.DisableTracing(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if sum.Spans == 0 || sum.Tracks < 3 {
		t.Fatalf("trace too thin: %d spans on %d tracks, want spans on 2 workers + 2 call lanes", sum.Spans, sum.Tracks)
	}
	// The engine is reusable: a second enable/disable cycle works.
	var buf2 bytes.Buffer
	if err := eng.EnableTracing(&buf2); err != nil {
		t.Fatalf("re-enable after disable: %v", err)
	}
	if err := eng.DisableTracing(); err != nil {
		t.Fatalf("disable of an empty trace: %v", err)
	}
}

// TestMetricsSnapshotConcurrent is the acceptance bound on the metrics
// leg: 8 concurrent GEMM callers on one engine while another goroutine
// snapshots continuously must be race-free (run under -race), and the
// final snapshot must account for every call.
func TestMetricsSnapshotConcurrent(t *testing.T) {
	const callers, iters = 8, 4
	eng := NewEngine(4)
	defer eng.Close()
	rng := rand.New(rand.NewSource(33))
	n := 96
	A := Random(n, n, rng)
	B := Random(n, n, rng)

	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = eng.Metrics().Snapshot()
		}
	}()
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				C := NewMatrix(n, n)
				opts := &Options{
					Layout:    []Layout{ZMorton, Hilbert, ColMajor}[g%3],
					Algorithm: []Algorithm{Standard, Strassen}[g%2],
					ForceTile: 16,
				}
				if _, err := eng.Mul(C, A, B, opts); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-snapDone
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	s := eng.Metrics().Snapshot()
	if got := s.Counters["gemm_calls"]; got != callers*iters {
		t.Fatalf("gemm_calls = %d, want %d", got, callers*iters)
	}
	if got := s.Counters["gemm_errors"]; got != 0 {
		t.Fatalf("gemm_errors = %d, want 0", got)
	}
	th := s.Histograms["total_seconds"]
	if th.Count != callers*iters {
		t.Fatalf("total_seconds count = %d, want %d", th.Count, callers*iters)
	}
	if th.Mean() <= 0 {
		t.Fatalf("total_seconds mean = %g, want > 0", th.Mean())
	}
}

// TestWorkerUtilization is the acceptance bound on busy accounting: a
// parallel multiply on a 4-worker engine must report a utilization
// that is positive and clamped within (0, 1].
func TestWorkerUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("1024³ multiply in -short mode")
	}
	// Collect this test's ~25MB of matrices and pooled tile buffers
	// before the next test starts: on a single-CPU host under -race a
	// deferred concurrent GC otherwise lands inside a neighboring
	// test's latency measurement.
	t.Cleanup(runtime.GC)
	eng := NewEngine(4)
	defer eng.Close()
	rng := rand.New(rand.NewSource(34))
	n := 1024
	A := Random(n, n, rng)
	B := Random(n, n, rng)
	C := NewMatrix(n, n)
	rep, err := eng.Mul(C, A, B, &Options{Layout: ZMorton, Algorithm: Standard})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Fatalf("Utilization = %g, want in (0, 1]", rep.Utilization)
	}
	if rep.Spawns <= 0 {
		t.Fatalf("Spawns = %d, want > 0 for a parallel 1024³ multiply", rep.Spawns)
	}
}

// TestStressTracingUnderFaults runs `make stress`'s fault schedule with
// tracing enabled: concurrent multiplications that randomly panic,
// fail allocation, and stall must neither trip the race detector on
// the tracer's rings nor corrupt the exported trace.
func TestStressTracingUnderFaults(t *testing.T) {
	if !faultinject.Enabled() {
		faultinject.Configure(faultinject.Config{
			PanicProb: 0.005, AllocProb: 0.01, DelayProb: 0.005,
			Delay: 50 * time.Microsecond, Seed: 11,
		})
		defer faultinject.Disable()
	}
	eng := NewEngine(4)
	defer eng.Close()
	rng := rand.New(rand.NewSource(35))
	n := 96
	A := Random(n, n, rng)
	B := Random(n, n, rng)

	// A small ring forces wraparound during the run, covering the
	// overwrite path under real concurrency, not just the unit test.
	var buf bytes.Buffer
	if err := eng.EnableTracing(&buf); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				C := NewMatrix(n, n)
				opts := &Options{
					Layout:    []Layout{ZMorton, Hilbert}[g%2],
					Algorithm: []Algorithm{Standard, Strassen, Winograd}[i%3],
					ForceTile: 16,
				}
				_, _ = eng.Mul(C, A, B, opts) // injected faults may fail the call; that is the point
			}
		}(g)
	}
	wg.Wait()
	if err := eng.DisableTracing(); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("trace exported under faults invalid: %v", err)
	}
	s := eng.Metrics().Snapshot()
	if got := s.Counters["gemm_calls"]; got != 32 {
		t.Fatalf("gemm_calls = %d, want 32 (every call counted, failed or not)", got)
	}
}
