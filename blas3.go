package recmat

import (
	"repro/internal/blas3"
	"repro/internal/matrix"
)

// The BLAS-3 layer: the remaining Level 3 routines and the recursive
// Cholesky factorization, all built on the recursive-layout GEMM as the
// ATLAS work cited by the paper prescribes. Each routine is a quadrant
// recursion whose bulk flops flow through Mul under the layout and
// algorithm selected in opts.

// SYRK computes C ← α·A·Aᵀ + β·C (trans false) or C ← α·Aᵀ·A + β·C
// (trans true). C must be square; both triangles are updated.
func (e *Engine) SYRK(trans bool, alpha float64, A *Matrix, beta float64, C *Matrix, opts *Options) error {
	return blas3.SYRK(e.pool, opts.coreOptions(), trans, alpha, A, beta, C)
}

// TRSM solves op(L)·X = α·B in place (X overwrites B). upper selects an
// upper-triangular factor; transL applies the factor transposed.
func (e *Engine) TRSM(upper, transL bool, alpha float64, L, B *Matrix, opts *Options) error {
	return blas3.TRSM(e.pool, opts.coreOptions(), upper, transL, alpha, L, B)
}

// TRMM computes B ← α·op(L)·B in place for triangular L.
func (e *Engine) TRMM(upper, transL bool, alpha float64, L, B *Matrix, opts *Options) error {
	return blas3.TRMM(e.pool, opts.coreOptions(), upper, transL, alpha, L, B)
}

// Cholesky factors a symmetric positive-definite matrix (only the lower
// triangle is read) into L·Lᵀ, returning the lower-triangular L.
func (e *Engine) Cholesky(A *Matrix, opts *Options) (*Matrix, error) {
	return blas3.Cholesky(e.pool, opts.coreOptions(), A)
}

// SolveSPD solves A·X = B for symmetric positive-definite A by Cholesky
// factorization and two triangular solves; B is overwritten with X.
func (e *Engine) SolveSPD(A, B *Matrix, opts *Options) error {
	L, err := e.Cholesky(A, opts)
	if err != nil {
		return err
	}
	if err := e.TRSM(false, false, 1, L, B, opts); err != nil {
		return err
	}
	return e.TRSM(false, true, 1, L, B, opts)
}

// LUFactorization is an LU factorization with partial pivoting
// (P·A = L·U) whose trailing-matrix updates run through the
// recursive-layout multiply.
type LUFactorization struct {
	f    *blas3.LU
	e    *Engine
	opts *Options
}

// LU factors a general square matrix with partial pivoting.
func (e *Engine) LU(A *Matrix, opts *Options) (*LUFactorization, error) {
	f, err := blas3.Factor(e.pool, opts.coreOptions(), A)
	if err != nil {
		return nil, err
	}
	return &LUFactorization{f: f, e: e, opts: opts}, nil
}

// Solve solves A·X = B using the factorization; B is overwritten with X.
func (lu *LUFactorization) Solve(B *Matrix) error {
	return lu.f.Solve(lu.e.pool, lu.opts.coreOptions(), B)
}

// Det returns the determinant of the factored matrix.
func (lu *LUFactorization) Det() float64 { return lu.f.Det() }

// SolveLU factors A and solves A·X = B in one call; B is overwritten.
func (e *Engine) SolveLU(A, B *Matrix, opts *Options) error {
	f, err := e.LU(A, opts)
	if err != nil {
		return err
	}
	return f.Solve(B)
}

// ensure matrix package stays the single source of the Matrix type.
var _ *matrix.Dense = (*Matrix)(nil)
